// Table 1 — the monolithic baseline processor parameters, and Table 2 —
// the workload categories of the wrap-up study.
#include "bench_util.hpp"
#include "wload/profile.hpp"

using namespace hcsim;
using namespace hcsim::bench;

int main() {
  header("Table 1 - baseline machine parameters",
         "TC 32Kuops/4w; DL0 32KB/8w/3cyc/2port; UL1 4MB/16w/13cyc/1port; "
         "int+fp 32-entry/3-issue schedulers; commit 6; memory 450 cycles");
  std::printf("%s\n", describe_machine(monolithic_baseline()).c_str());
  std::printf("%s\n", describe_machine(helper_machine(steering_ir())).c_str());

  header("Table 2 - workload categories of the wrap-up study",
         "enc 62, sfp 41, kernels 52, mm 85, office 75, prod 45, ws 49");
  TextTable t({"category", "#traces", "description"});
  unsigned total = 0;
  for (const WorkloadCategory& c : workload_categories()) {
    t.add_row({c.name, std::to_string(c.num_traces), c.description});
    total += c.num_traces;
  }
  std::printf("%s", t.render().c_str());
  std::printf("total traces: %u (the paper's headline rounds this to 412)\n\n",
              total);
  return 0;
}
