// Figure 5 — width prediction accuracy per app (correct / non-fatal /
// fatal), and the Section 3.2 confidence-estimator claim: fatal
// mispredictions drop from 2.11% to 0.83% with the 2-bit estimator.
#include "bench_util.hpp"

using namespace hcsim;
using namespace hcsim::bench;

int main() {
  header("Figure 5 - width prediction accuracy (8-8-8 machine)",
         "~93.5% correct on average; fatal mispredictions need recovery");

  TextTable t({"app", "correct%", "non-fatal%", "fatal%"});
  std::vector<double> correct, fatal;
  for (const std::string& app : spec_names()) {
    const AppRun run = run_app(spec_profile(app), steering_888());
    const SimResult& r = run.helper;
    const double tot = static_cast<double>(r.wp_correct + r.wp_nonfatal + r.wp_fatal);
    const double c = 100.0 * static_cast<double>(r.wp_correct) / tot;
    const double nf = 100.0 * static_cast<double>(r.wp_nonfatal) / tot;
    const double f = 100.0 * static_cast<double>(r.wp_fatal) / tot;
    correct.push_back(c);
    fatal.push_back(f);
    t.add_row({app, TextTable::num(c, 2), TextTable::num(nf, 2), TextTable::num(f, 2)});
  }
  t.add_row({"AVG", TextTable::num(avg(correct), 2), "", TextTable::num(avg(fatal), 2)});
  std::printf("%s\n", t.render().c_str());

  // Confidence estimator ablation (Section 3.2: 2.11% -> 0.83%).
  double fatal_on = 0, fatal_off = 0;
  for (const std::string& app : spec_names()) {
    const Trace& tr = cached_trace(spec_profile(app), default_trace_len());
    MachineConfig on = helper_machine(steering_888());
    MachineConfig off = on;
    off.wpred.use_confidence = false;
    fatal_on += 100.0 * simulate(on, tr).fatal_rate();
    fatal_off += 100.0 * simulate(off, tr).fatal_rate();
  }
  fatal_on /= static_cast<double>(spec_names().size());
  fatal_off /= static_cast<double>(spec_names().size());
  std::printf("fatal misprediction rate without confidence estimator: %.2f%%\n",
              fatal_off);
  std::printf("fatal misprediction rate with    confidence estimator: %.2f%%\n",
              fatal_on);
  std::printf("(paper: 2.11%% -> 0.83%%)\n");

  footer_shape(avg(correct) > 85.0 && fatal_on < fatal_off,
               "high accuracy; confidence estimator reduces fatal mispredictions");
  return 0;
}
