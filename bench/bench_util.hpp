// hcsim — shared helpers for the figure/table reproduction benches.
//
// Every bench prints: (1) what the paper reports for this experiment,
// (2) the same rows/series measured on this implementation, (3) a short
// shape-check summary. Absolute numbers need not match the paper (our
// substrate is a simulator, not the authors' proprietary testbed); the
// ordering/factor structure should.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "exp/sweep.hpp"
#include "sim/simulator.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace hcsim::bench {

inline void header(const char* experiment, const char* paper_claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paper_claim);
  std::printf("================================================================\n");
}

inline void footer_shape(bool ok, const std::string& what) {
  std::printf("[shape %s] %s\n\n", ok ? "OK" : "DIVERGES", what.c_str());
}

/// Average of per-app values.
inline double avg(const std::vector<double>& v) { return exp::mean(v); }

/// The SPEC Int 2000 app order used by every per-app figure.
inline const std::vector<std::string>& spec_names() {
  static const std::vector<std::string> kNames = {
      "bzip2", "crafty", "eon", "gap", "gcc", "gzip",
      "mcf",   "parser", "perlbmk", "twolf", "vortex", "vpr"};
  return kNames;
}

/// Thread count for sweep-driven benches: HCSIM_SWEEP_THREADS, default all
/// hardware threads (results are thread-count independent; see exp/runner).
inline exp::RunOptions sweep_options() {
  exp::RunOptions opts;
  const unsigned long long threads = env_u64("HCSIM_SWEEP_THREADS", 0);
  HCSIM_CHECK(threads <= 4096, "HCSIM_SWEEP_THREADS out of range");
  opts.threads = static_cast<unsigned>(threads);
  return opts;
}

/// Run a named sweep (exp::find_sweep) on the parallel runner. Aborts if the
/// name is unknown — benches reference registry sweeps by construction.
inline exp::SweepResult run_named_sweep(const std::string& name) {
  auto spec = exp::find_sweep(name);
  HCSIM_CHECK(spec.has_value(), "unknown sweep: " + name);
  return exp::run_sweep(*spec, sweep_options());
}

}  // namespace hcsim::bench
