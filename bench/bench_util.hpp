// hcsim — shared helpers for the figure/table reproduction benches.
//
// Every bench prints: (1) what the paper reports for this experiment,
// (2) the same rows/series measured on this implementation, (3) a short
// shape-check summary. Absolute numbers need not match the paper (our
// substrate is a simulator, not the authors' proprietary testbed); the
// ordering/factor structure should.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "util/table.hpp"

namespace hcsim::bench {

inline void header(const char* experiment, const char* paper_claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paper_claim);
  std::printf("================================================================\n");
}

inline void footer_shape(bool ok, const std::string& what) {
  std::printf("[shape %s] %s\n\n", ok ? "OK" : "DIVERGES", what.c_str());
}

/// Average of per-app values.
inline double avg(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

/// The SPEC Int 2000 app order used by every per-app figure.
inline const std::vector<std::string>& spec_names() {
  static const std::vector<std::string> kNames = {
      "bzip2", "crafty", "eon", "gap", "gcc", "gzip",
      "mcf",   "parser", "perlbmk", "twolf", "vortex", "vpr"};
  return kNames;
}

}  // namespace hcsim::bench
