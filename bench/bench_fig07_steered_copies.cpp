// Figure 7 — percentage of instructions steered to the helper cluster and
// of inter-cluster copies under the 8-8-8 scheme (paper: 15% steered).
#include "bench_util.hpp"

using namespace hcsim;
using namespace hcsim::bench;

int main() {
  header("Figure 7 - helper-cluster instructions and copies (8_8_8)",
         "15% of instructions steered on average; sizable copy percentage "
         "because narrow values feed wide addressing/indexing");

  TextTable t({"app", "helper instr %", "copy instr %"});
  std::vector<double> steered, copies;
  for (const std::string& app : spec_names()) {
    const AppRun run = run_app(spec_profile(app), steering_888());
    const double s = 100.0 * run.helper.helper_frac();
    const double c = 100.0 * run.helper.copy_frac();
    steered.push_back(s);
    copies.push_back(c);
    t.add_row({app, TextTable::num(s, 1), TextTable::num(c, 1)});
  }
  t.add_row({"AVG", TextTable::num(avg(steered), 1), TextTable::num(avg(copies), 1)});
  std::printf("%s\n", t.render().c_str());
  footer_shape(avg(steered) > 5.0 && avg(steered) < 45.0 && avg(copies) > 5.0,
               "minority of instructions steered under pure 8-8-8, with "
               "substantial copy traffic");
  return 0;
}
