// Ablation — width predictor table size sweep. The paper states that 256
// entries "was found to be a good compromise between complexity and
// performance" (Section 3.2); this bench regenerates that tradeoff curve.
#include "bench_util.hpp"

using namespace hcsim;
using namespace hcsim::bench;

int main() {
  header("Ablation - width predictor table size",
         "256 entries chosen as the complexity/performance compromise");

  const std::vector<u32> sizes = {16, 64, 256, 1024, 4096};
  TextTable t({"entries", "perf+% (avg)", "wp accuracy %", "fatal %"});
  std::vector<double> perf_at;
  for (u32 size : sizes) {
    std::vector<double> gains, accs, fatals;
    for (const char* app : {"gcc", "gzip", "twolf", "parser"}) {
      const Trace& tr = cached_trace(spec_profile(app), default_trace_len());
      MachineConfig base = monolithic_baseline();
      MachineConfig helper = helper_machine(steering_888_br_lr_cr());
      helper.wpred.entries = size;
      const SimResult rb = simulate(base, tr);
      const SimResult rh = simulate(helper, tr);
      gains.push_back((rh.speedup_vs(rb) - 1.0) * 100.0);
      accs.push_back(100.0 * rh.wp_accuracy());
      fatals.push_back(100.0 * rh.fatal_rate());
    }
    perf_at.push_back(avg(gains));
    t.add_row({std::to_string(size), TextTable::num(avg(gains), 2),
               TextTable::num(avg(accs), 2), TextTable::num(avg(fatals), 3)});
  }
  std::printf("%s\n", t.render().c_str());
  // Shape: 256 close to the asymptote (within 1.5pp of 4096 entries).
  footer_shape(perf_at[2] + 1.5 >= perf_at.back(),
               "returns saturate around 256 entries — the paper's choice");
  return 0;
}
